//! The `Contraction` facade: parse → plan → bind → execute.
//!
//! One front door for the whole SpTTN pipeline, split into two stages so
//! iterative algorithms can plan once and execute many times:
//!
//! 1. **Symbolic planning** — [`Contraction::parse`] reads an
//!    einsum-style expression (structure only), and [`Contraction::plan`]
//!    runs the Sec. 5 planner against a data-independent [`Shapes`]
//!    description (index dimensions plus a sparsity profile or modeled
//!    nnz). The resulting [`Plan`] holds only the kernel, contraction
//!    path, loop orders, fused forest, and buffer specs — **no tensors**.
//! 2. **Binding and execution** — [`Plan::bind`] attaches a CSF sparse
//!    input and named dense factors, producing an
//!    [`Executor`] whose preallocated workspace makes
//!    repeated execution allocation-free.
//!
//! The one-shot convenience path survives as [`Contraction::compile`]:
//! bind operands with [`Contraction::with_sparse_input`] /
//! [`Contraction::with_factor`], and dimensions plus the exact sparsity
//! profile are inferred from the bound tensors before planning.
//!
//! Two expression syntaxes are accepted:
//!
//! - paper style: `"A(i,a) = T(i,j,k) * B(j,a) * C(k,a)"` (use `+=`
//!   instead of `=` to accumulate into the bound output on
//!   `execute_into`)
//! - arrow style: `"T[i,j,k]*B[j,a]*C[k,a]->A[i,a]"`
//!
//! In both, the **first right-hand-side tensor is the sparse input**,
//! and its written index order must match the CSF storage order of the
//! bound tensor. When the output's index set equals the sparse input's,
//! the output shares the sparse pattern (TTTP-like) and execution
//! returns [`ContractionOutput::Sparse`](crate::ContractionOutput).

use crate::executor::Executor;
use crate::{Result, SpttnError};
use spttn_cost::{
    candidate_orders, plan_mode_orders, BlasAware, CacheMiss, MaxBufferDim, MaxBufferSize,
    ModeOrderPolicy, OrderCost, OrderSearch, TreeCost,
};
use spttn_exec::{CancelToken, Microkernels};
use spttn_ir::{
    buffers_for_forest, build_forest, BufferSpec, ContractionPath, Kernel, KernelBuilder,
    KernelError, LoopForest, NestSpec,
};
use spttn_tensor::{CooTensor, Csf, DenseTensor, SparsityProfile};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

/// Cost model driving the planner (paper Defs. 4.5, 4.6 and Sec. 5).
///
/// All variants carry only integral parameters, so the model derives
/// `Eq`/`Hash` and can appear verbatim in [`crate::PlanKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostModel {
    /// Minimize the maximum intermediate-buffer dimensionality (Def. 4.5).
    MaxBufferDim,
    /// Minimize the maximum intermediate-buffer element count (Def. 4.5).
    MaxBufferSize,
    /// Minimize modeled cache misses with footprint exponent `d` (Def. 4.6).
    CacheMiss {
        /// Cache-footprint exponent.
        d: usize,
    },
    /// Maximize BLAS-offloadable dense loops under a buffer-dimension
    /// bound (Sec. 5; the paper's experiments use bound 2).
    BlasAware {
        /// Maximum allowed buffer dimensionality.
        buffer_dim_bound: usize,
    },
}

/// Thread-count selection for parallel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Threads {
    /// One thread per available hardware core
    /// ([`std::thread::available_parallelism`], falling back to 1).
    Auto,
    /// Exactly `n` threads; `N(1)` (or `N(0)`) is the serial path,
    /// byte-identical to a plan executed without parallelism.
    N(usize),
}

impl Threads {
    /// Resolve to a concrete thread count (≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            Threads::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Threads::N(n) => n.max(1),
        }
    }
}

/// Which execution engine a bound [`crate::Executor`] runs.
///
/// Both engines execute the identical plan and mirror each other's
/// floating-point operation order, so results agree to the last bit in
/// practice (and are held to ≤1e-9 by the differential suite). The
/// interpreter is kept as the independently-implemented oracle: run it
/// when validating the tape engine, bisecting a suspected executor
/// bug, or measuring the specialization speedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Compile the loop forest to a flat instruction tape at bind time
    /// ([`spttn_exec::tape`]): per-visit dispatch, microkernel
    /// selection, and operand addressing are resolved once, densely
    /// iterated sparse modes use a monotone finger search, and the
    /// driver runs allocation- and atomic-free. The default.
    #[default]
    Tape,
    /// The recursive loop-forest interpreter
    /// ([`spttn_exec::execute_forest_into`]) — re-derives per-visit
    /// decisions from the forest; slower, kept as the oracle engine.
    Interp,
}

/// Resource budget evaluated at [`Plan::bind`] (and
/// `NetworkPlan::bind` in `spttn-net`) **before** any workspace is
/// allocated — the admission-control half of the hardened runtime.
///
/// Both limits are modeled quantities from the paper's Sec.-5 cost
/// pipeline, so rejection is predictable and allocation-free:
/// `max_workspace_bytes` bounds the Eq.-5 intermediate-buffer
/// footprint replicated per worker thread
/// ([`Plan::parallel_footprint`] × 8 bytes; network binds add their
/// materialized intermediates), and `max_modeled_flops` bounds the
/// plan's modeled operation count. Workspace pressure degrades
/// gracefully — the bind drops to the largest thread count (and hence
/// tile count) that fits, down to the serial path — before a typed
/// [`crate::SpttnError::BudgetExceeded`] reports predicted vs allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RunBudget {
    /// Maximum preallocated workspace, in bytes. `None` = unlimited.
    pub max_workspace_bytes: Option<u64>,
    /// Maximum modeled flops per execution. `None` = unlimited.
    pub max_modeled_flops: Option<u128>,
}

impl RunBudget {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Cap the preallocated workspace footprint (builder style).
    pub fn with_max_workspace_bytes(mut self, bytes: u64) -> Self {
        self.max_workspace_bytes = Some(bytes);
        self
    }

    /// Cap the modeled flops per execution (builder style).
    pub fn with_max_modeled_flops(mut self, flops: u128) -> Self {
        self.max_modeled_flops = Some(flops);
        self
    }

    /// Whether any limit is set.
    pub fn is_limited(&self) -> bool {
        self.max_workspace_bytes.is_some() || self.max_modeled_flops.is_some()
    }
}

/// Execution-stage options, carried by a [`Plan`] into [`Plan::bind`].
///
/// With more than one thread, binding partitions the CSF root level
/// into leaf-balanced tiles and the executor fans them out over a
/// persistent worker pool with one preallocated workspace and private
/// output per thread; partial outputs combine through a deterministic
/// tree reduction, so results are bit-reproducible run to run at a
/// fixed thread count (and within ≤1e-9 of the serial path). The
/// [`Engine`] choice is orthogonal: one compiled tape is shared by
/// every worker thread.
///
/// The robustness fields ([`RunBudget`], `deadline`, `cancel`) gate
/// and bound executions: the budget is enforced at bind time, the
/// deadline and token are re-checked at every root-iteration
/// checkpoint of every execution the plan's executors run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOptions {
    /// Threads the bound executor runs on.
    pub threads: Threads,
    /// Engine executions run on (default [`Engine::Tape`]).
    pub engine: Engine,
    /// Statically verify the compiled tape at bind time
    /// ([`CompiledTape::verify`](spttn_exec::CompiledTape::verify))
    /// even in release builds. Debug builds always verify; the check
    /// is O(program size) and runs once per bind, never per execute.
    pub verify: bool,
    /// Microkernel policy for the tape engine (default
    /// [`Microkernels::Auto`]): `Auto` selects explicit-SIMD kernels
    /// (AVX2+FMA / NEON) by runtime CPU detection once at bind time
    /// and enables the fused/rank-specialized tape superinstructions;
    /// `Scalar` pins the plain scalar kernels, bitwise-identical to
    /// the pre-SIMD tape. The `SPTTN_MICROKERNELS` environment
    /// variable (`auto` / `scalar`) overrides either. Interpreter
    /// executions always use the scalar kernels.
    pub microkernels: Microkernels,
    /// Per-execution wall-clock limit, measured from each
    /// `execute_into` call; expiry surfaces as
    /// [`crate::SpttnError::Cancelled`] with the output contractually
    /// untouched (re-execute to retry). `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token checked alongside the deadline.
    /// Clone the token before planning and call
    /// [`CancelToken::cancel`] from any thread to stop in-flight
    /// executions; [`CancelToken::reset`] re-arms it for retries.
    pub cancel: Option<CancelToken>,
    /// Bind-time admission budget (default: unlimited).
    pub budget: RunBudget,
}

impl Default for ExecOptions {
    /// Serial execution — parallelism is opt-in, keeping default plans
    /// byte-identical to previous releases — on the tape engine, with
    /// no deadline, token, or budget.
    fn default() -> Self {
        ExecOptions {
            threads: Threads::N(1),
            engine: Engine::Tape,
            verify: false,
            microkernels: Microkernels::Auto,
            deadline: None,
            cancel: None,
            budget: RunBudget::default(),
        }
    }
}

/// Options for [`Contraction::plan`].
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Cost model selecting among loop nests.
    pub cost_model: CostModel,
    /// How the CSF storage order of the sparse input is chosen:
    /// the expression's written order
    /// ([`ModeOrderPolicy::Natural`], the default), a caller-specified
    /// permutation of it ([`ModeOrderPolicy::Fixed`]), or a search over
    /// candidate orders keeping the cheapest
    /// ([`ModeOrderPolicy::Auto`]). Whatever is chosen, [`Plan::bind`]
    /// still takes a CSF stored in the *written* order and rebuilds it
    /// when the plan's order differs — see [`Plan::mode_order`].
    pub mode_order: ModeOrderPolicy,
    /// Maximum contraction paths the DP runs on per cost tier.
    pub max_paths_per_tier: usize,
    /// Maximum asymptotic-cost tiers to explore before giving up.
    pub max_tiers: usize,
    /// Paths within this factor of the tier leader share the tier.
    pub tier_slack: f64,
    /// Execution-stage options the plan carries into [`Plan::bind`].
    /// Not part of [`crate::PlanKey`]: the symbolic plan is identical
    /// for every thread count.
    pub exec: ExecOptions,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            cost_model: CostModel::BlasAware {
                buffer_dim_bound: 2,
            },
            mode_order: ModeOrderPolicy::Natural,
            max_paths_per_tier: 64,
            max_tiers: 16,
            tier_slack: 1.0,
            exec: ExecOptions::default(),
        }
    }
}

impl PlanOptions {
    /// Options with a specific cost model and default search limits.
    pub fn with_cost_model(cost_model: CostModel) -> Self {
        PlanOptions {
            cost_model,
            ..Default::default()
        }
    }

    /// Set the execution thread count (builder style).
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.exec.threads = threads;
        self
    }

    /// Set the execution engine (builder style). [`Engine::Tape`] is
    /// the default; [`Engine::Interp`] selects the recursive
    /// interpreter — the differential-testing oracle.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.exec.engine = engine;
        self
    }

    /// Statically verify the compiled tape at bind time even in
    /// release builds (builder style). Debug builds always verify.
    /// Like every [`ExecOptions`] field this is honored on
    /// [`crate::PlanCache`] hits too — cached plans are re-bound with
    /// the caller's options, not the flight leader's.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.exec.verify = verify;
        self
    }

    /// Set the tape microkernel policy (builder style).
    /// [`Microkernels::Scalar`] forces the plain scalar kernels —
    /// bitwise-identical to the pre-SIMD tape engine — while
    /// [`Microkernels::Auto`] (the default) picks the best SIMD
    /// implementation the host supports at bind time. Honored on
    /// [`crate::PlanCache`] hits like every [`ExecOptions`] field.
    pub fn with_microkernels(mut self, microkernels: Microkernels) -> Self {
        self.exec.microkernels = microkernels;
        self
    }

    /// Set a per-execution wall-clock deadline (builder style). Every
    /// execution of an executor bound from this plan is cancelled —
    /// [`crate::SpttnError::Cancelled`], output untouched — once
    /// `deadline` elapses from its own `execute_into` call.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.exec.deadline = Some(deadline);
        self
    }

    /// Attach a cooperative [`CancelToken`] (builder style). Keep a
    /// clone and call [`CancelToken::cancel`] from any thread to stop
    /// in-flight executions at their next checkpoint.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.exec.cancel = Some(cancel);
        self
    }

    /// Set the bind-time admission [`RunBudget`] (builder style).
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.exec.budget = budget;
        self
    }

    /// Set the CSF mode-order policy (builder style).
    ///
    /// [`ModeOrderPolicy::Auto`] runs the Sec. 5 planner once per
    /// candidate order (every permutation up to 4 sparse modes, a
    /// pruned family above) and keeps the cheapest by
    /// `(op count, cost value)` — exact per-order fiber counts when the
    /// pattern is known ([`Shapes::with_pattern`] or the one-shot
    /// [`Contraction::compile`] path), the uniform model with
    /// [`Shapes::with_nnz`]. A lone [`Shapes::with_profile`] cannot
    /// score other orders comparably, so `Auto` keeps the natural
    /// order there.
    /// Plan time multiplies accordingly; execution is unaffected except
    /// for the one-time CSF rebuild at [`Plan::bind`] when a
    /// non-natural order wins. For pattern-sharing (TTTP-like) outputs
    /// a non-natural order also reorders the output's nonzero
    /// enumeration (the set of entries is unchanged).
    pub fn with_mode_order(mut self, mode_order: ModeOrderPolicy) -> Self {
        self.mode_order = mode_order;
        self
    }

    fn search(&self) -> spttn_cost::PlanOptions {
        spttn_cost::PlanOptions {
            max_paths_per_tier: self.max_paths_per_tier,
            max_tiers: self.max_tiers,
            tier_slack: self.tier_slack,
        }
    }
}

/// Data-independent operand description for symbolic planning: one
/// dimension per index name, plus sparsity information for the sparse
/// input — either an exact [`SparsityProfile`] or a modeled uniform
/// nonzero count.
///
/// ```
/// use spttn::Shapes;
/// let shapes = Shapes::new()
///     .with_dims(&[("i", 30), ("j", 20), ("k", 25), ("r", 8)])
///     .with_nnz(200);
/// assert_eq!(shapes.dim("j"), Some(20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Shapes {
    dims: HashMap<String, usize>,
    nnz: Option<u64>,
    profile: Option<SparsityProfile>,
    pattern: Option<PatternRef>,
}

/// A shared coordinate pattern plus its fingerprint, computed once at
/// [`Shapes::with_pattern`] time so neither repeated plans nor cache
/// lookups re-copy or re-hash `O(nnz)` coordinates.
#[derive(Debug, Clone)]
pub(crate) struct PatternRef {
    pub(crate) coo: Arc<CooTensor>,
    pub(crate) fp: u64,
}

/// Order-sensitive hash of a pattern's shape and flat coordinates —
/// the cache-key fingerprint that keeps two patterns with identical
/// natural-order profiles from sharing a mode-order-search key.
pub(crate) fn pattern_fingerprint(coo: &CooTensor) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    coo.dims().hash(&mut h);
    coo.coords().hash(&mut h);
    h.finish()
}

impl Shapes {
    /// Empty description; add dimensions and sparsity with the builder
    /// methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind one index name to a dimension.
    pub fn with_dim(mut self, name: &str, dim: usize) -> Self {
        self.dims.insert(name.to_string(), dim);
        self
    }

    /// Bind several index dimensions at once.
    pub fn with_dims(mut self, dims: &[(&str, usize)]) -> Self {
        for &(name, dim) in dims {
            self.dims.insert(name.to_string(), dim);
        }
        self
    }

    /// Model the sparse input as a uniformly-random pattern with `nnz`
    /// nonzeros (see [`SparsityProfile::uniform`]).
    pub fn with_nnz(mut self, nnz: u64) -> Self {
        self.nnz = Some(nnz);
        self
    }

    /// Use exact per-level fiber counts for the sparse input. Takes
    /// precedence over [`Shapes::with_pattern`] and [`Shapes::with_nnz`].
    ///
    /// A profile describes exactly one CSF order, so it cannot score
    /// alternatives: under
    /// [`ModeOrderPolicy::Auto`](crate::cost::ModeOrderPolicy) the
    /// search degenerates to the natural order (use
    /// [`Shapes::with_pattern`] to search on exact per-order counts);
    /// a `Fixed` non-natural order falls back to the uniform model at
    /// this profile's nonzero count.
    pub fn with_profile(mut self, profile: SparsityProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Use the exact sparsity *pattern* of the sparse input: a COO
    /// tensor whose mode `m` is the index written at position `m` of
    /// the expression (values are ignored — only coordinates matter).
    ///
    /// A pattern carries strictly more information than a profile: the
    /// planner can derive exact per-level fiber counts for **any** CSF
    /// mode order, which is what makes
    /// [`ModeOrderPolicy::Auto`](crate::cost::ModeOrderPolicy) searches
    /// profile-guided rather than model-guided. Takes precedence over
    /// [`Shapes::with_nnz`]; [`Shapes::with_profile`] takes precedence
    /// over both.
    pub fn with_pattern(mut self, pattern: CooTensor) -> Self {
        let fp = pattern_fingerprint(&pattern);
        self.pattern = Some(PatternRef {
            coo: Arc::new(pattern),
            fp,
        });
        self
    }

    /// The dimension bound to an index name, if any.
    pub fn dim(&self, name: &str) -> Option<usize> {
        self.dims.get(name).copied()
    }

    /// Resolve the sparsity description into a natural-(written-)order
    /// [`SparsityProfile`] for a sparse input whose written index names
    /// are `names` — the profile multi-kernel schedulers (`spttn-net`)
    /// score candidate contraction sequences against before any
    /// per-step plan exists. Exact when built from
    /// [`Shapes::with_profile`] or [`Shapes::with_pattern`]; the
    /// uniform model under [`Shapes::with_nnz`].
    pub fn natural_profile(&self, names: &[String]) -> Result<SparsityProfile> {
        let mut dims = Vec::with_capacity(names.len());
        for n in names {
            dims.push(self.dim(n).ok_or_else(|| {
                SpttnError::Planning(format!(
                    "no dimension bound for index '{n}'; call Shapes::with_dim(\"{n}\", ...)"
                ))
            })?);
        }
        let natural: Vec<usize> = (0..names.len()).collect();
        if let Some(p) = &self.profile {
            if p.order() != names.len() {
                return Err(SpttnError::Shape(format!(
                    "sparsity profile has {} modes but the sparse input has {}",
                    p.order(),
                    names.len()
                )));
            }
            return Ok(p.clone());
        }
        if let Some(p) = &self.pattern {
            if p.coo.order() != names.len() {
                return Err(SpttnError::Shape(format!(
                    "sparsity pattern has {} modes but the sparse input has {}",
                    p.coo.order(),
                    names.len()
                )));
            }
            return SparsityProfile::from_coo(&p.coo, &natural).map_err(SpttnError::from);
        }
        if let Some(nnz) = self.nnz {
            return SparsityProfile::uniform(&dims, &natural, nnz).map_err(SpttnError::from);
        }
        Err(SpttnError::Planning(
            "no sparsity information for the sparse input; call Shapes::with_nnz \
             (uniform model), Shapes::with_pattern (exact coordinates), or \
             Shapes::with_profile (exact counts)"
                .into(),
        ))
    }

    /// Resolve the sparsity source the planner runs on, validated
    /// against the kernel's sparse-input dimensions.
    pub(crate) fn resolve_source(&self, kernel: &Kernel) -> Result<SparsitySource> {
        let levels = kernel.csf_index_order().len();
        if let Some(p) = &self.profile {
            if p.order() != levels {
                return Err(SpttnError::Shape(format!(
                    "sparsity profile has {} modes but the sparse input has {levels}",
                    p.order()
                )));
            }
            for l in 0..levels {
                let want = kernel.dim(kernel.index_at_level(l));
                let got = p.dims()[p.mode_order()[l]];
                if want != got {
                    return Err(SpttnError::Shape(format!(
                        "sparsity profile level {l} has dimension {got}, kernel expects {want}"
                    )));
                }
            }
            return Ok(SparsitySource::Profile(p.clone()));
        }
        if let Some(p) = &self.pattern {
            if p.coo.order() != levels {
                return Err(SpttnError::Shape(format!(
                    "sparsity pattern has {} modes but the sparse input has {levels}",
                    p.coo.order()
                )));
            }
            for l in 0..levels {
                let want = kernel.dim(kernel.index_at_level(l));
                let got = p.coo.dims()[l];
                if want != got {
                    return Err(SpttnError::Shape(format!(
                        "sparsity pattern mode {l} has dimension {got}, kernel expects {want}"
                    )));
                }
            }
            return Ok(SparsitySource::Pattern {
                coo: Arc::clone(&p.coo),
                base: (0..levels).collect(),
                fp: p.fp,
            });
        }
        if let Some(nnz) = self.nnz {
            return Ok(SparsitySource::Uniform { nnz });
        }
        Err(SpttnError::Planning(
            "no sparsity information for the sparse input; call Shapes::with_nnz \
             (uniform model), Shapes::with_pattern (exact coordinates), or \
             Shapes::with_profile (exact counts)"
                .into(),
        ))
    }
}

/// How the planner obtains a [`SparsityProfile`] for a candidate CSF
/// mode order: from an exact pattern (any order, exact counts), from
/// one exact profile (its own order exact, others modeled), or from the
/// uniform model.
#[derive(Debug, Clone)]
pub(crate) enum SparsitySource {
    /// Exact fiber counts for the natural written order; a `Fixed`
    /// non-natural order falls back to the uniform model at the same
    /// nonzero count (`Auto` does not search past natural here — see
    /// `run_planner`).
    Profile(SparsityProfile),
    /// Exact coordinates (shared, with a precomputed fingerprint for
    /// cache keys): `coo` mode `base[p]` is the index written at
    /// position `p` of the expression. Exact counts for every order.
    Pattern {
        coo: Arc<CooTensor>,
        base: Vec<usize>,
        fp: u64,
    },
    /// Uniform random model with `nnz` nonzeros, every order.
    Uniform { nnz: u64 },
}

impl SparsitySource {
    /// Profile for the candidate order `order` (a permutation of
    /// written positions) of `kernel`'s sparse input, where `kernel` is
    /// in natural written order. `None` skips the candidate.
    pub(crate) fn profile_for(&self, kernel: &Kernel, order: &[usize]) -> Option<SparsityProfile> {
        let identity = order.iter().enumerate().all(|(l, &p)| l == p);
        let modeled_dims = || -> Vec<usize> {
            order
                .iter()
                .map(|&p| kernel.dim(kernel.index_at_level(p)))
                .collect()
        };
        let natural: Vec<usize> = (0..order.len()).collect();
        match self {
            SparsitySource::Profile(p) => {
                if identity {
                    Some(p.clone())
                } else {
                    SparsityProfile::uniform(&modeled_dims(), &natural, p.nnz()).ok()
                }
            }
            SparsitySource::Pattern { coo, base, .. } => {
                let new_order: Vec<usize> = order.iter().map(|&p| base[p]).collect();
                SparsityProfile::from_coo(coo, &new_order).ok()
            }
            SparsitySource::Uniform { nnz } => {
                SparsityProfile::uniform(&modeled_dims(), &natural, *nnz).ok()
            }
        }
    }
}

/// One tensor reference parsed from the expression.
#[derive(Debug, Clone)]
struct RawRef {
    name: String,
    indices: Vec<String>,
}

/// A contraction being assembled: parsed structure, plus operands when
/// the one-shot [`Contraction::compile`] path is used.
#[derive(Debug, Clone, Default)]
pub struct Contraction {
    output: Option<RawRef>,
    inputs: Vec<RawRef>,
    /// Pre-built kernel (bypasses parsing and dimension inference).
    kernel: Option<Kernel>,
    /// `+=` expression: execution accumulates into the bound output.
    accumulate: bool,
    sparse: Option<Csf>,
    factors: HashMap<String, DenseTensor>,
}

impl Contraction {
    /// Parse an einsum-style SpTTN expression (structure only;
    /// dimensions are supplied at [`Contraction::plan`] time or inferred
    /// from bound tensors by [`Contraction::compile`]).
    pub fn parse(expr: &str) -> Result<Self> {
        let (output, inputs, accumulate) = parse_expression(expr)?;
        if inputs.is_empty() {
            return Err(KernelError::NoInputs.into());
        }
        // An output index appearing in no input factor has nothing to
        // produce it; reject at parse time with the offending name
        // instead of surfacing later as an opaque planner error.
        for idx in &output.indices {
            if !inputs.iter().any(|r| r.indices.contains(idx)) {
                return Err(SpttnError::Kernel(KernelError::Parse(format!(
                    "output index '{idx}' appears in no input factor of '{expr}'"
                ))));
            }
        }
        Ok(Contraction {
            output: Some(output),
            inputs,
            accumulate,
            ..Default::default()
        })
    }

    /// Start from an existing [`Kernel`] (e.g. one of
    /// [`spttn_ir::stdkernels`]); the kernel's declared dimensions are
    /// used directly, and bound tensors are validated against them.
    pub fn from_kernel(kernel: Kernel) -> Self {
        let as_raw = |r: &spttn_ir::TensorRef| RawRef {
            name: r.name.clone(),
            indices: r
                .indices
                .iter()
                .map(|&i| kernel.index_name(i).to_string())
                .collect(),
        };
        Contraction {
            output: Some(as_raw(&kernel.output)),
            inputs: kernel.inputs.iter().map(as_raw).collect(),
            kernel: Some(kernel),
            ..Default::default()
        }
    }

    /// Index names written on the sparse input (the first
    /// right-hand-side tensor), in written order — the names whose
    /// dimensions an ingested tensor file supplies. `None` before an
    /// expression is parsed.
    pub fn sparse_index_names(&self) -> Option<Vec<String>> {
        if let Some(k) = &self.kernel {
            return Some(
                k.csf_index_order()
                    .iter()
                    .map(|&i| k.index_name(i).to_string())
                    .collect(),
            );
        }
        self.inputs.first().map(|r| r.indices.clone())
    }

    /// Parsed input tensor references as `(name, written index names)`
    /// pairs, in expression order — the first entry is the sparse
    /// input. Multi-kernel schedulers (the `spttn-net` crate) read the
    /// network structure through this instead of re-parsing.
    pub fn input_refs(&self) -> Vec<(String, Vec<String>)> {
        self.inputs
            .iter()
            .map(|r| (r.name.clone(), r.indices.clone()))
            .collect()
    }

    /// The parsed output reference as `(name, written index names)`,
    /// `None` before an expression is parsed.
    pub fn output_ref(&self) -> Option<(String, Vec<String>)> {
        self.output
            .as_ref()
            .map(|r| (r.name.clone(), r.indices.clone()))
    }

    /// True when execution accumulates into the bound output (a `+=`
    /// expression, or [`Contraction::with_accumulate`]).
    pub fn is_accumulate(&self) -> bool {
        self.accumulate
    }

    /// All distinct index names in the expression, inputs first (in
    /// first-appearance order) then any output-only names. Drivers use
    /// this to know which dimensions still need declaring.
    pub fn all_index_names(&self) -> Vec<String> {
        let mut seen = Vec::new();
        let mut push = |n: &String| {
            if !seen.contains(n) {
                seen.push(n.clone());
            }
        };
        if let Some(k) = &self.kernel {
            return k.indices.iter().map(|i| i.name.clone()).collect();
        }
        for r in &self.inputs {
            r.indices.iter().for_each(&mut push);
        }
        if let Some(o) = &self.output {
            o.indices.iter().for_each(&mut push);
        }
        seen
    }

    /// Mark the contraction as accumulating into the bound output
    /// (`+=` semantics for `execute_into`). Parsing a `+=` expression
    /// sets this automatically.
    pub fn with_accumulate(mut self, accumulate: bool) -> Self {
        self.accumulate = accumulate;
        self
    }

    /// Bind the sparse input (the first right-hand-side tensor) for the
    /// one-shot [`Contraction::compile`] path. The CSF's storage order
    /// must match the expression's written index order for that tensor.
    pub fn with_sparse_input(mut self, csf: Csf) -> Self {
        self.sparse = Some(csf);
        self
    }

    /// Bind a dense factor by tensor name for the one-shot
    /// [`Contraction::compile`] path.
    pub fn with_factor(mut self, name: &str, tensor: DenseTensor) -> Self {
        self.factors.insert(name.to_string(), tensor);
        self
    }

    /// **Stage 1 — symbolic planning.** Choose a contraction path and
    /// loop orders minimizing the configured cost model, with tier
    /// fallback (paper Sec. 5), using only the index dimensions and
    /// sparsity description in `shapes` — no tensor data. The returned
    /// [`Plan`] can be bound to many operand sets via [`Plan::bind`].
    pub fn plan(self, shapes: &Shapes, opts: &PlanOptions) -> Result<Plan> {
        let (kernel, accumulate) = self.resolve_symbolic(shapes)?;
        let source = shapes.resolve_source(&kernel)?;
        Plan::build(kernel, source, accumulate, opts)
    }

    /// One-shot convenience: infer dimensions and the exact sparsity
    /// profile from the operands bound with
    /// [`Contraction::with_sparse_input`] / [`Contraction::with_factor`],
    /// plan, and bind — parse → plan → bind in one call. Equivalent to
    /// the two-stage API with a [`Shapes`] built from the bound tensors.
    /// Since the bound CSF supplies the exact pattern, a non-natural
    /// [`PlanOptions::mode_order`] policy is scored on exact per-order
    /// fiber counts here.
    pub fn compile(self, opts: PlanOptions) -> Result<Executor> {
        let (kernel, csf, factors, accumulate) = self.take_operands()?;
        let plan = Plan::build(kernel, source_from_csf(&csf, &opts), accumulate, &opts)?;
        plan.into_executor(csf, factors)
    }

    /// One-shot convenience through a [`crate::PlanCache`]: like
    /// [`Contraction::compile`], but the symbolic plan is looked up by
    /// [`crate::PlanKey`] first and the Sec. 5 DP only runs on a miss.
    pub fn compile_cached(self, cache: &crate::PlanCache, opts: &PlanOptions) -> Result<Executor> {
        let (kernel, csf, factors, accumulate) = self.take_operands()?;
        let source = source_from_csf(&csf, opts);
        // The cache re-applies the caller's exec options (thread count,
        // engine) on a hit, so the returned plan binds as requested.
        let plan = cache.plan_from_parts(kernel, source, accumulate, opts)?;
        (*plan).clone().into_executor(csf, factors)
    }

    /// Resolve the validated kernel for symbolic planning: a pre-built
    /// kernel is used as-is, otherwise every index dimension comes from
    /// `shapes`.
    pub(crate) fn resolve_symbolic(self, shapes: &Shapes) -> Result<(Kernel, bool)> {
        if let Some(kernel) = self.kernel {
            // Dimensions live in the kernel; catch contradictions early.
            for info in &kernel.indices {
                if let Some(d) = shapes.dim(&info.name) {
                    if d != info.dim {
                        return Err(SpttnError::Shape(format!(
                            "index '{}' is {} in the kernel but {d} in the shapes",
                            info.name, info.dim
                        )));
                    }
                }
            }
            return Ok((kernel, self.accumulate));
        }
        let output = self
            .output
            .as_ref()
            .ok_or_else(|| SpttnError::Planning("no expression parsed".into()))?;
        let kernel = build_kernel(output, &self.inputs, |name| shapes.dim(name))?;
        Ok((kernel, self.accumulate))
    }

    /// Consume the bound operands of the one-shot path: validated
    /// kernel, CSF, dense factors in input order, and the accumulate
    /// flag.
    pub(crate) fn take_operands(mut self) -> Result<(Kernel, Csf, Vec<DenseTensor>, bool)> {
        let Some(csf) = self.sparse.take() else {
            return Err(SpttnError::Planning(
                "no sparse input bound; call with_sparse_input".into(),
            ));
        };
        let output = self
            .output
            .clone()
            .ok_or_else(|| SpttnError::Planning("no expression parsed".into()))?;

        let kernel = match self.kernel.take() {
            Some(k) => k,
            None => infer_kernel(&output, &self.inputs, &csf, &self.factors)?,
        };

        // Collect dense factors in input order, moving each binding out
        // of the map (no clone); a name appearing in several input slots
        // reuses the first tensor taken.
        let mut factors: Vec<DenseTensor> = Vec::new();
        let mut taken: HashMap<String, usize> = HashMap::new();
        for (slot, r) in kernel.inputs.iter().enumerate() {
            if slot == kernel.sparse_input {
                continue;
            }
            let t = match self.factors.remove(&r.name) {
                Some(t) => t,
                None => match taken.get(&r.name) {
                    Some(&at) => factors[at].clone(),
                    None => {
                        return Err(SpttnError::Planning(format!(
                            "dense factor '{}' not bound; call with_factor(\"{}\", ...)",
                            r.name, r.name
                        )))
                    }
                },
            };
            taken.insert(r.name.clone(), factors.len());
            factors.push(t);
        }
        if let Some(name) = self.factors.keys().next() {
            return Err(SpttnError::Planning(format!(
                "bound factor '{name}' does not appear in the expression"
            )));
        }

        // Validate the CSF and factor shapes with the same rules the
        // executor applies.
        let refs: Vec<&DenseTensor> = factors.iter().collect();
        spttn_exec::validate_operands(&kernel, &csf, &refs)?;
        drop(refs);

        Ok((kernel, csf, factors, self.accumulate))
    }
}

/// Sparsity source for the one-shot paths: the bound CSF's own profile
/// under the natural policy (cheap, no coordinate extraction), the full
/// coordinate pattern when a non-natural policy needs exact counts for
/// other orders.
fn source_from_csf(csf: &Csf, opts: &PlanOptions) -> SparsitySource {
    match opts.mode_order {
        ModeOrderPolicy::Natural => SparsitySource::Profile(SparsityProfile::from_csf(csf)),
        _ => {
            let coo = csf.to_coo();
            let fp = pattern_fingerprint(&coo);
            SparsitySource::Pattern {
                coo: Arc::new(coo),
                base: csf.mode_order().to_vec(),
                fp,
            }
        }
    }
}

/// Type-erased planner output.
struct Planned {
    /// Kernel with the sparse input's written order permuted to the
    /// chosen CSF order (identical to the input kernel when natural).
    kernel: Kernel,
    /// Profile the winning nest was planned against.
    profile: SparsityProfile,
    /// Chosen CSF order as a permutation of written positions.
    order: Vec<usize>,
    /// Per-candidate-order search record (single entry when fixed).
    order_costs: Vec<OrderCost>,
    path: ContractionPath,
    spec: NestSpec,
    flops: u128,
    tier: usize,
    cost: String,
}

fn erase<V: std::fmt::Debug>(s: OrderSearch<V>) -> Planned {
    Planned {
        kernel: s.kernel,
        profile: s.profile,
        order: s.order,
        order_costs: s.explored,
        cost: format!("{:?}", s.planned.value),
        path: s.planned.path,
        spec: s.planned.spec,
        flops: s.planned.flops,
        tier: s.planned.tier,
    }
}

fn run_planner(kernel: &Kernel, source: &SparsitySource, opts: &PlanOptions) -> Result<Planned> {
    fn go<C: TreeCost>(
        kernel: &Kernel,
        source: &SparsitySource,
        cost: &C,
        opts: &PlanOptions,
    ) -> Result<Planned>
    where
        C::Value: std::fmt::Debug,
    {
        let d = kernel.csf_index_order().len();
        let orders: Vec<Vec<usize>> = match &opts.mode_order {
            ModeOrderPolicy::Natural => vec![(0..d).collect()],
            ModeOrderPolicy::Fixed(order) => {
                // Surface a bad permutation as its own error instead of
                // an opaque "no feasible nest".
                kernel.permute_sparse_modes(order)?;
                vec![order.clone()]
            }
            // Auto needs comparable scores across candidates. A lone
            // exact profile can score only its own (natural) order;
            // modeling the others uniformly would compare exact against
            // modeled counts and could crown a genuinely worse order —
            // so the search degenerates to natural there. Patterns
            // (exact everywhere) and the uniform model (consistent
            // everywhere) search the full candidate set.
            ModeOrderPolicy::Auto => match source {
                SparsitySource::Profile(_) => vec![(0..d).collect()],
                SparsitySource::Pattern { .. } | SparsitySource::Uniform { .. } => {
                    candidate_orders(&kernel.ref_dims(kernel.sparse_ref()))
                }
            },
        };
        plan_mode_orders(kernel, cost, &opts.search(), &orders, |o| {
            source.profile_for(kernel, o)
        })
        .map(erase)
        .ok_or_else(|| SpttnError::Planning("no feasible loop nest found".into()))
    }
    match opts.cost_model {
        CostModel::MaxBufferDim => go(kernel, source, &MaxBufferDim, opts),
        CostModel::MaxBufferSize => go(kernel, source, &MaxBufferSize, opts),
        CostModel::CacheMiss { d } => go(kernel, source, &CacheMiss { d }, opts),
        CostModel::BlasAware { buffer_dim_bound } => {
            go(kernel, source, &BlasAware { buffer_dim_bound }, opts)
        }
    }
}

/// A planned contraction: the symbolic artifact of Stage 1.
///
/// Holds the kernel, chosen contraction path, loop orders, fused loop
/// forest, and Eq.-5 buffer specs — **no tensors**. A plan is reusable:
/// bind it to operands with [`Plan::bind`] as many times as needed, or
/// store it in a [`crate::PlanCache`] keyed by [`crate::PlanKey`].
#[derive(Debug, Clone)]
pub struct Plan {
    /// Kernel in the plan's chosen CSF order (the sparse input's
    /// written order is permuted when [`Plan::mode_order`] is not the
    /// identity).
    pub(crate) kernel: Kernel,
    pub(crate) path: ContractionPath,
    pub(crate) spec: NestSpec,
    pub(crate) forest: LoopForest,
    pub(crate) buffers: Vec<BufferSpec>,
    pub(crate) accumulate: bool,
    pub(crate) profile: SparsityProfile,
    pub(crate) exec: ExecOptions,
    /// Chosen CSF order: level `l` stores the index written at position
    /// `mode_order[l]` of the original expression.
    pub(crate) mode_order: Vec<usize>,
    /// Per-candidate-order planning record (one entry per explored
    /// order; a single entry under a natural/fixed policy).
    pub(crate) order_costs: Vec<OrderCost>,
    /// Leading-order scalar-operation count of the chosen path.
    pub flops: u128,
    /// Asymptotic-cost tier the path came from (0 = optimal).
    pub tier: usize,
    /// Debug rendering of the chosen nest's cost value.
    pub cost: String,
}

impl Plan {
    /// Run the planner on fully-resolved parts.
    pub(crate) fn build(
        kernel: Kernel,
        source: SparsitySource,
        accumulate: bool,
        opts: &PlanOptions,
    ) -> Result<Plan> {
        let planned = run_planner(&kernel, &source, opts)?;
        let forest = build_forest(&planned.kernel, &planned.path, &planned.spec)?;
        let buffers = buffers_for_forest(&planned.kernel, &planned.path, &forest);
        Ok(Plan {
            kernel: planned.kernel,
            path: planned.path,
            spec: planned.spec,
            forest,
            buffers,
            accumulate,
            profile: planned.profile,
            exec: opts.exec.clone(),
            mode_order: planned.order,
            order_costs: planned.order_costs,
            flops: planned.flops,
            tier: planned.tier,
            cost: planned.cost,
        })
    }

    /// Replace the execution options this plan carries into
    /// [`Plan::bind`] (builder style). The symbolic nest is untouched —
    /// the same plan can be bound serially and in parallel.
    pub fn with_exec(mut self, exec: ExecOptions) -> Plan {
        self.exec = exec;
        self
    }

    /// The execution options [`Plan::bind`] will apply.
    pub fn exec(&self) -> ExecOptions {
        self.exec.clone()
    }

    /// Preallocated workspace elements needed to execute this plan at
    /// `threads` parallel workers (each worker replicates every Eq.-5
    /// buffer).
    pub fn parallel_footprint(&self, threads: usize) -> u128 {
        spttn_ir::tiled_workspace_footprint(&self.buffers, threads)
    }

    /// The validated kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The chosen contraction path.
    pub fn path(&self) -> &ContractionPath {
        &self.path
    }

    /// The chosen loop orders.
    pub fn spec(&self) -> &NestSpec {
        &self.spec
    }

    /// The fused loop forest the executor walks.
    pub fn forest(&self) -> &LoopForest {
        &self.forest
    }

    /// Intermediate buffers of the nest (Eq. 5).
    pub fn buffers(&self) -> &[BufferSpec] {
        &self.buffers
    }

    /// The sparsity profile the plan was made for (in the plan's chosen
    /// CSF order).
    pub fn profile(&self) -> &SparsityProfile {
        &self.profile
    }

    /// The chosen CSF storage order: level `l` of the tree holds the
    /// sparse index written at position `mode_order()[l]` of the
    /// original expression. The identity permutation under
    /// [`ModeOrderPolicy::Natural`](crate::cost::ModeOrderPolicy); a
    /// non-identity order makes [`Plan::bind`] rebuild the incoming
    /// CSF (which is always interpreted as written-order storage).
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// True when the chosen order is the expression's written order —
    /// binding then reuses the incoming CSF without a rebuild.
    pub fn is_natural_order(&self) -> bool {
        self.mode_order.iter().enumerate().all(|(l, &p)| l == p)
    }

    /// The kernel with the sparse input back in the expression's
    /// written order (inverting [`Plan::mode_order`]). Reference
    /// checkers (e.g. a naive einsum over written-order dense operands)
    /// want this view rather than [`Plan::kernel`].
    pub fn natural_kernel(&self) -> Kernel {
        if self.is_natural_order() {
            return self.kernel.clone();
        }
        let mut inv = vec![0usize; self.mode_order.len()];
        for (l, &p) in self.mode_order.iter().enumerate() {
            inv[p] = l;
        }
        self.kernel
            .permute_sparse_modes(&inv)
            .expect("inverse of a valid permutation")
    }

    /// Per-candidate-order planning record: the orders the search
    /// explored (natural/fixed policies record exactly one), each with
    /// the best nest's op count (`None` when infeasible for that order)
    /// and cost rendering. The chosen order is the `(flops, cost)`
    /// minimum.
    pub fn order_costs(&self) -> &[OrderCost] {
        &self.order_costs
    }

    /// True when execution accumulates into the bound output (`+=`).
    pub fn accumulate(&self) -> bool {
        self.accumulate
    }

    /// Human-readable summary: kernel, path, orders, loop nest, buffers.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("kernel: {}\n", self.kernel.to_einsum()));
        if !self.is_natural_order() {
            let names: Vec<&str> = self
                .kernel
                .csf_index_order()
                .iter()
                .map(|&i| self.kernel.index_name(i))
                .collect();
            s.push_str(&format!(
                "storage: CSF order ({}) — chosen over {} candidate order(s); \
                 bind re-sorts written-order tensors\n",
                names.join(","),
                self.order_costs.len()
            ));
        }
        s.push_str(&format!("path:   {}\n", self.path.describe(&self.kernel)));
        s.push_str(&format!("orders: {}\n", self.spec.describe(&self.kernel)));
        s.push_str(&format!(
            "cost:   {} (tier {}, ~{} flops)\n",
            self.cost, self.tier, self.flops
        ));
        for b in &self.buffers {
            let names: Vec<&str> = b.inds.iter().map(|&i| self.kernel.index_name(i)).collect();
            s.push_str(&format!(
                "buffer: X{} [{}] = {} elems\n",
                b.producer,
                names.join(","),
                b.size()
            ));
        }
        s.push_str("nest:\n");
        s.push_str(&self.forest.render(&self.kernel, &self.path));
        s
    }
}

/// Parse either expression syntax into (output, inputs, accumulate).
fn parse_expression(expr: &str) -> Result<(RawRef, Vec<RawRef>, bool)> {
    let e = expr.replace('[', "(").replace(']', ")");
    let (lhs, rhs, accumulate) = if let Some((ins, out)) = e.split_once("->") {
        (out.trim().to_string(), ins.trim().to_string(), false)
    } else if let Some(pos) = e.find("+=") {
        (
            e[..pos].trim().to_string(),
            e[pos + 2..].trim().to_string(),
            true,
        )
    } else if let Some(pos) = e.find('=') {
        (
            e[..pos].trim().to_string(),
            e[pos + 1..].trim().to_string(),
            false,
        )
    } else {
        return Err(SpttnError::Kernel(KernelError::Parse(
            "expected '=' or '->' in contraction expression".into(),
        )));
    };
    let output = parse_ref(&lhs)?;
    let mut inputs = Vec::new();
    for part in split_top_level(&rhs, '*') {
        if part.trim().is_empty() {
            return Err(SpttnError::Kernel(KernelError::Parse(format!(
                "empty factor in '{}' (stray or doubled '*'?)",
                rhs.trim()
            ))));
        }
        inputs.push(parse_ref(&part)?);
    }
    Ok((output, inputs, accumulate))
}

fn parse_ref(s: &str) -> Result<RawRef> {
    let s = s.trim();
    let err = |m: String| SpttnError::Kernel(KernelError::Parse(m));
    let open = s
        .find('(')
        .ok_or_else(|| err(format!("expected '(' or '[' in tensor reference '{s}'")))?;
    if !s.ends_with(')') {
        return Err(err(format!("unterminated tensor reference '{s}'")));
    }
    let name = s[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(format!("bad tensor name in '{s}'")));
    }
    let inner = &s[open + 1..s.len() - 1];
    let indices: Vec<String> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|x| x.trim().to_string()).collect()
    };
    for i in &indices {
        if i.is_empty() || !i.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(err(format!("bad index name '{i}' in '{s}'")));
        }
    }
    Ok(RawRef {
        name: name.to_string(),
        indices,
    })
}

/// Split on `sep` outside parentheses. Every segment is kept — including
/// empty ones from doubled or trailing separators — so the caller can
/// reject them with a pointed message instead of silently dropping them.
fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            c if c == sep && depth == 0 => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// Build the validated kernel from parsed structure and a dimension
/// oracle (symbolic path: dimensions come from [`Shapes`]; one-shot
/// path: from the bound tensors).
fn build_kernel(
    output: &RawRef,
    inputs: &[RawRef],
    dim_of: impl Fn(&str) -> Option<usize>,
) -> Result<Kernel> {
    let mut b = KernelBuilder::new();
    // Declare indices in first-appearance order (sparse modes first).
    for r in inputs {
        for idx in &r.indices {
            let dim = dim_of(idx).ok_or_else(|| {
                SpttnError::Planning(format!(
                    "no dimension bound for index '{idx}'; call Shapes::with_dim(\"{idx}\", ...)"
                ))
            })?;
            b = b.index(idx, dim);
        }
    }
    for idx in &output.indices {
        if dim_of(idx).is_none() {
            return Err(SpttnError::Kernel(KernelError::UnboundOutputIndex(
                idx.clone(),
            )));
        }
    }
    let oinds: Vec<&str> = output.indices.iter().map(String::as_str).collect();
    b = b.output(&output.name, &oinds);
    for r in inputs {
        let iinds: Vec<&str> = r.indices.iter().map(String::as_str).collect();
        b = b.input(&r.name, &iinds);
    }
    // Pattern-sharing output: index set equals the sparse input's.
    let sparse = &inputs[0];
    let mut oset: Vec<&String> = output.indices.iter().collect();
    let mut sset: Vec<&String> = sparse.indices.iter().collect();
    oset.sort();
    oset.dedup();
    sset.sort();
    sset.dedup();
    if oset == sset {
        b = b.sparse_output();
    }
    Ok(b.build()?)
}

/// Infer every index dimension from the bound tensors and build the
/// validated kernel (one-shot path).
fn infer_kernel(
    output: &RawRef,
    inputs: &[RawRef],
    csf: &Csf,
    factors: &HashMap<String, DenseTensor>,
) -> Result<Kernel> {
    let mut dims: HashMap<String, usize> = HashMap::new();
    let mut learn = |name: &str, dim: usize| -> Result<()> {
        match dims.get(name) {
            Some(&d) if d != dim => Err(SpttnError::Shape(format!(
                "index '{name}' bound to both dimension {d} and {dim}"
            ))),
            Some(_) => Ok(()),
            None => {
                dims.insert(name.to_string(), dim);
                Ok(())
            }
        }
    };

    // Sparse input: written order == CSF storage order.
    let sparse = &inputs[0];
    if csf.order() != sparse.indices.len() {
        return Err(SpttnError::Shape(format!(
            "sparse tensor '{}' is written with {} indices but the CSF has {} modes",
            sparse.name,
            sparse.indices.len(),
            csf.order()
        )));
    }
    for (level, idx) in sparse.indices.iter().enumerate() {
        learn(idx, csf.dims()[csf.mode_order()[level]])?;
    }
    for r in &inputs[1..] {
        let t = factors.get(&r.name).ok_or_else(|| {
            SpttnError::Planning(format!(
                "dense factor '{}' not bound; call with_factor(\"{}\", ...)",
                r.name, r.name
            ))
        })?;
        if t.order() != r.indices.len() {
            return Err(SpttnError::Shape(format!(
                "factor '{}' is written with {} indices but the tensor has {} modes",
                r.name,
                r.indices.len(),
                t.order()
            )));
        }
        for (pos, idx) in r.indices.iter().enumerate() {
            learn(idx, t.dims()[pos])?;
        }
    }
    build_kernel(output, inputs, |name| dims.get(name).copied())
}
