//! # spttn
//!
//! Minimum-cost loop nests for contraction of a sparse tensor with a
//! tensor network (SPAA 2024), as one pipeline: **parse → plan →
//! execute**.
//!
//! The facade lives in [`Contraction`]: parse an einsum-style
//! expression, bind a CSF sparse input and dense factors, plan under a
//! selectable tree-separable cost model ([`CostModel`]), and execute
//! the fused loop nest. The underlying layers remain available as
//! re-exported crates ([`ir`], [`tensor`], [`cost`], [`exec`]) for
//! callers that need direct control.
//!
//! ```
//! use rand::prelude::*;
//! use spttn::{Contraction, CostModel, PlanOptions};
//! use spttn_tensor::{random_coo, random_dense, Csf};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let coo = random_coo(&[30, 20, 25], 200, &mut rng).unwrap();
//! let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
//!
//! let plan = Contraction::parse("T[i,j,k]*A[j,r]*B[k,r]->O[i,r]")
//!     .unwrap()
//!     .with_sparse_input(csf)
//!     .with_factor("A", random_dense(&[20, 8], &mut rng))
//!     .with_factor("B", random_dense(&[25, 8], &mut rng))
//!     .plan(PlanOptions::with_cost_model(CostModel::MaxBufferSize))
//!     .unwrap();
//!
//! let out = plan.execute().unwrap();
//! assert_eq!(out.to_dense().dims(), &[30, 8]);
//! ```

pub mod contraction;

pub use contraction::{Contraction, CostModel, Plan, PlanOptions};
pub use spttn_core::{Result, Scalar, SpttnError};
pub use spttn_exec::ContractionOutput;

/// Cost models and loop-order search (re-export of `spttn-cost`).
pub use spttn_cost as cost;
/// Execution subsystem (re-export of `spttn-exec`).
pub use spttn_exec as exec;
/// Kernel IR, paths, orders, forests (re-export of `spttn-ir`).
pub use spttn_ir as ir;
/// Tensor formats and generators (re-export of `spttn-tensor`).
pub use spttn_tensor as tensor;
