//! # spttn
//!
//! Minimum-cost loop nests for contraction of a sparse tensor with a
//! tensor network (SPAA 2024), as a two-stage pipeline: **plan once on
//! structure, execute many times on data**.
//!
//! - **Stage 1 (symbolic):** [`Contraction::parse`] reads an
//!   einsum-style expression; [`Contraction::plan`] runs the Sec. 5
//!   planner against a data-independent [`Shapes`] description under a
//!   selectable cost model ([`CostModel`]). The resulting [`Plan`]
//!   holds kernel, contraction path, loop orders, fused forest, and
//!   buffer specs — no tensors.
//! - **Stage 2 (bound):** [`Plan::bind`] attaches a CSF sparse input
//!   and named dense factors, yielding an [`Executor`] whose
//!   preallocated workspace makes [`Executor::execute_into`]
//!   allocation-free. [`Executor::set_factor`] and
//!   [`Executor::set_sparse_values`] rebind values in place for
//!   iterative algorithms (CP-ALS, HOOI). With
//!   [`ExecOptions`]`{ threads: `[`Threads::Auto`]` }` (or `N(k)`),
//!   binding tiles the CSF root level and executions fan out over a
//!   persistent thread pool with deterministic reduction — same ≤1e-9
//!   agreement with the reference, bit-reproducible at a fixed thread
//!   count, still zero allocations per call.
//! - **Mode-order search:** the CSF storage order is part of the plan.
//!   [`PlanOptions::mode_order`] takes a
//!   [`ModeOrderPolicy`] — `Natural` (written order), `Fixed` (a
//!   specific permutation), or `Auto`, which replans per candidate
//!   order and keeps the cheapest ([`Plan::mode_order`] /
//!   [`Plan::order_costs`] expose the outcome). Give
//!   [`Shapes::with_pattern`] the coordinate pattern for exact
//!   per-order fiber counts; [`Plan::bind`] re-sorts a written-order
//!   CSF into the chosen order automatically.
//! - [`PlanCache`] keys plans by [`PlanKey`] (kernel structure, mode
//!   dims, sparsity summary, cost model, mode-order policy) so
//!   repeated builds of the same contraction skip the planning DP
//!   entirely; concurrent misses on one key are single-flight.
//!
//! The one-shot path survives as [`Contraction::compile`]: bind
//! operands directly and get a ready [`Executor`] in one call.
//!
//! ```
//! use rand::prelude::*;
//! use spttn::{Contraction, CostModel, PlanOptions, Shapes};
//! use spttn_tensor::{random_coo, random_dense, Csf};
//!
//! // Stage 1 — plan from structure only (no tensors needed).
//! let plan = Contraction::parse("T[i,j,k]*A[j,r]*B[k,r]->O[i,r]")
//!     .unwrap()
//!     .plan(
//!         &Shapes::new()
//!             .with_dims(&[("i", 30), ("j", 20), ("k", 25), ("r", 8)])
//!             .with_nnz(200),
//!         &PlanOptions::with_cost_model(CostModel::MaxBufferSize),
//!     )
//!     .unwrap();
//!
//! // Stage 2 — bind data, then execute many times (ALS-sweep shape).
//! let mut rng = StdRng::seed_from_u64(7);
//! let coo = random_coo(&[30, 20, 25], 200, &mut rng).unwrap();
//! let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
//! let (a, b) = (random_dense(&[20, 8], &mut rng), random_dense(&[25, 8], &mut rng));
//!
//! let mut exec = plan.bind(csf, &[("A", &a), ("B", &b)]).unwrap();
//! let mut out = exec.output_template();
//! for _sweep in 0..4 {
//!     exec.set_factor("A", &random_dense(&[20, 8], &mut rng)).unwrap();
//!     exec.execute_into(&mut out).unwrap(); // zero heap allocations
//! }
//! assert_eq!(out.to_dense().dims(), &[30, 8]);
//! ```

// The facade only re-exports and composes the crates below; all
// unsafe code in the workspace lives in `spttn_exec::parallel`
// (scoped-thread lifetime erasure) and `spttn_exec::simd` (vendor
// SIMD intrinsics behind bind-time feature detection).
#![forbid(unsafe_code)]

pub mod cache;
pub mod contraction;
pub mod executor;

pub use cache::{PlanCache, PlanKey};
pub use contraction::{
    Contraction, CostModel, Engine, ExecOptions, Plan, PlanOptions, RunBudget, Shapes, Threads,
};
pub use executor::Executor;
pub use spttn_core::{Result, Scalar, SpttnError};
pub use spttn_cost::{ModeOrderPolicy, OrderCost};
pub use spttn_exec::{
    CancelToken, CompiledTape, ContractionOutput, ExecStats, Microkernels, RunGuard,
    TapeInvariantError, TapeReport,
};

/// Cost models and loop-order search (re-export of `spttn-cost`).
pub use spttn_cost as cost;
/// Execution subsystem (re-export of `spttn-exec`).
pub use spttn_exec as exec;
/// Kernel IR, paths, orders, forests (re-export of `spttn-ir`).
pub use spttn_ir as ir;
/// Tensor formats and generators (re-export of `spttn-tensor`).
pub use spttn_tensor as tensor;
