pub use spttn;
