//! Stage 2 of the pipeline: bind operands to a symbolic [`Plan`] and
//! execute it repeatedly.
//!
//! An [`Executor`] owns the bound CSF sparse input, the dense factors
//! (slot-ordered), a preallocated [`Workspace`] holding every Eq.-5
//! intermediate buffer, and output storage — everything execution
//! touches. After [`Plan::bind`] returns, [`Executor::execute_into`]
//! performs **zero heap allocations**, and the rebinding methods
//! ([`Executor::set_factor`], [`Executor::set_sparse_values`]) copy new
//! values into the existing allocations, which is exactly the shape of
//! an ALS / HOOI sweep: plan once, rebind factors each iteration,
//! execute.

use crate::contraction::Plan;
use crate::{Result, SpttnError};
use spttn_exec::{
    execute_forest_into, validate_slotted_operands, ContractionOutput, OutputMut, Workspace,
};
use spttn_tensor::{CooTensor, Csf, DenseTensor};
use std::collections::HashMap;

impl Plan {
    /// Bind operands to this plan: the CSF sparse input (stored in the
    /// kernel's written index order) and one dense tensor per distinct
    /// factor name. Shapes are validated here, once — the executor's
    /// hot path revalidates cheaply but never reallocates.
    pub fn bind(&self, csf: Csf, factors: &[(&str, &DenseTensor)]) -> Result<Executor> {
        // A duplicated name would silently shadow the later binding.
        for (pos, (name, _)) in factors.iter().enumerate() {
            if factors[..pos].iter().any(|(n, _)| n == name) {
                return Err(SpttnError::Execution(format!(
                    "factor '{name}' bound twice; bind each name once"
                )));
            }
        }
        // Resolve names to input-order tensors (sparse slot skipped). A
        // name filling several slots is cloned into each.
        let mut compact: Vec<DenseTensor> = Vec::new();
        for (slot, r) in self.kernel.inputs.iter().enumerate() {
            if slot == self.kernel.sparse_input {
                continue;
            }
            let t = factors
                .iter()
                .find(|(name, _)| *name == r.name)
                .map(|(_, t)| (*t).clone())
                .ok_or_else(|| {
                    SpttnError::Execution(format!(
                        "dense factor '{}' not bound; pass (\"{}\", &tensor) to bind",
                        r.name, r.name
                    ))
                })?;
            compact.push(t);
        }
        for (name, _) in factors {
            if !self
                .kernel
                .inputs
                .iter()
                .enumerate()
                .any(|(slot, r)| slot != self.kernel.sparse_input && r.name == *name)
            {
                return Err(SpttnError::Execution(format!(
                    "bound factor '{name}' does not appear in the kernel"
                )));
            }
        }
        self.bind_ordered(csf, compact)
    }

    /// Bind with factors already collected in input order (the sparse
    /// slot skipped). Shared by [`Plan::bind`] and the one-shot facade.
    pub(crate) fn bind_ordered(&self, csf: Csf, factors: Vec<DenseTensor>) -> Result<Executor> {
        self.clone().into_executor(csf, factors)
    }

    /// Consuming variant of [`Plan::bind_ordered`] (avoids the clone
    /// when the plan is not reused).
    pub(crate) fn into_executor(self, csf: Csf, factors: Vec<DenseTensor>) -> Result<Executor> {
        Executor::new(self, csf, factors)
    }
}

/// A plan bound to operands, ready for repeated execution.
///
/// See the [module docs](self) for the allocation contract and the
/// rebinding workflow.
#[derive(Debug, Clone)]
pub struct Executor {
    plan: Plan,
    csf: Csf,
    /// Slot-ordered dense factors; the sparse slot holds an unread
    /// scalar placeholder.
    factors: Vec<DenseTensor>,
    /// Input slots each factor name fills (for [`Executor::set_factor`]).
    slots_by_name: HashMap<String, Vec<usize>>,
    workspace: Workspace,
    /// Internal output storage for [`Executor::execute`].
    out_dense: DenseTensor,
    out_vals: Vec<f64>,
    /// Coordinate template for materializing pattern-sharing outputs.
    coo_template: Option<CooTensor>,
}

impl Executor {
    fn new(plan: Plan, csf: Csf, compact: Vec<DenseTensor>) -> Result<Executor> {
        let kernel = &plan.kernel;
        let n_dense = kernel.inputs.len() - 1;
        if compact.len() != n_dense {
            return Err(SpttnError::Execution(format!(
                "expected {n_dense} dense factors, got {}",
                compact.len()
            )));
        }
        let mut factors: Vec<DenseTensor> = Vec::with_capacity(kernel.inputs.len());
        let mut slots_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut next = compact.into_iter();
        for (slot, r) in kernel.inputs.iter().enumerate() {
            if slot == kernel.sparse_input {
                factors.push(DenseTensor::zeros(&[]));
                continue;
            }
            factors.push(next.next().expect("length checked above"));
            slots_by_name.entry(r.name.clone()).or_default().push(slot);
        }
        validate_slotted_operands(kernel, &csf, &factors)?;

        let workspace = Workspace::from_specs(kernel, &plan.path, &plan.forest, &plan.buffers);
        let (out_dense, out_vals, coo_template) = if kernel.output_sparse {
            (
                DenseTensor::zeros(&[]),
                vec![0.0; csf.nnz()],
                Some(csf.to_coo()),
            )
        } else {
            (
                DenseTensor::zeros(&kernel.ref_dims(&kernel.output)),
                Vec::new(),
                None,
            )
        };

        Ok(Executor {
            plan,
            csf,
            factors,
            slots_by_name,
            workspace,
            out_dense,
            out_vals,
            coo_template,
        })
    }

    /// The symbolic plan this executor runs.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The bound sparse input.
    pub fn csf(&self) -> &Csf {
        &self.csf
    }

    /// The preallocated workspace (exposed so callers can assert buffer
    /// stability across executions).
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The first bound tensor for a factor name, if any.
    pub fn factor(&self, name: &str) -> Option<&DenseTensor> {
        let slot = *self.slots_by_name.get(name)?.first()?;
        Some(&self.factors[slot])
    }

    /// A zeroed output with the correct shape for
    /// [`Executor::execute_into`]: a dense tensor, or a pattern-sharing
    /// sparse tensor with the CSF's coordinates.
    pub fn output_template(&self) -> ContractionOutput {
        match &self.coo_template {
            Some(coo) => ContractionOutput::Sparse(coo.with_vals(vec![0.0; self.csf.nnz()])),
            None => ContractionOutput::Dense(DenseTensor::zeros(
                &self.plan.kernel.ref_dims(&self.plan.kernel.output),
            )),
        }
    }

    /// Execute into a caller-owned output with **zero heap allocation**.
    ///
    /// For a plain `=` plan the output is zeroed first; for a `+=` plan
    /// (see [`crate::Contraction::with_accumulate`]) the contraction is
    /// accumulated on top of the output's existing values.
    pub fn execute_into(&mut self, out: &mut ContractionOutput) -> Result<()> {
        let Executor {
            plan,
            csf,
            factors,
            workspace,
            coo_template,
            ..
        } = self;
        match out {
            ContractionOutput::Dense(d) => {
                // Guard before zeroing so a mismatched output is left
                // untouched; the core revalidates with a full message.
                let oinds = &plan.kernel.output.indices;
                let fits = !plan.kernel.output_sparse
                    && d.order() == oinds.len()
                    && oinds
                        .iter()
                        .enumerate()
                        .all(|(pos, &i)| d.dims()[pos] == plan.kernel.dim(i));
                if fits && !plan.accumulate {
                    d.fill_zero();
                }
                execute_forest_into(
                    &plan.kernel,
                    &plan.path,
                    &plan.forest,
                    csf,
                    factors,
                    workspace,
                    OutputMut::Dense(d),
                )
            }
            ContractionOutput::Sparse(c) => {
                if c.dims() != csf.dims() {
                    return Err(SpttnError::Shape(format!(
                        "sparse output has dims {:?}, the bound CSF has {:?}",
                        c.dims(),
                        csf.dims()
                    )));
                }
                // A pattern-sharing output must carry *exactly* the
                // bound CSF's coordinates in leaf order — same nnz with
                // different coordinates would silently pair values with
                // the wrong positions. Cheap memcmp, no allocation.
                if let Some(template) = coo_template {
                    if c.coords() != template.coords() {
                        return Err(SpttnError::Shape(
                            "sparse output's coordinate pattern differs from the bound CSF; \
                             start from Executor::output_template()"
                                .into(),
                        ));
                    }
                }
                let fits = plan.kernel.output_sparse && c.nnz() == csf.nnz();
                if fits && !plan.accumulate {
                    c.vals_mut().fill(0.0);
                }
                execute_forest_into(
                    &plan.kernel,
                    &plan.path,
                    &plan.forest,
                    csf,
                    factors,
                    workspace,
                    OutputMut::Sparse(c.vals_mut()),
                )
            }
        }
    }

    /// Execute and return a freshly materialized output (always `=`
    /// semantics: the result starts from zero). Allocates only for the
    /// returned value; prefer [`Executor::execute_into`] in hot loops.
    pub fn execute(&mut self) -> Result<ContractionOutput> {
        let Executor {
            plan,
            csf,
            factors,
            workspace,
            out_dense,
            out_vals,
            ..
        } = self;
        if plan.kernel.output_sparse {
            out_vals.fill(0.0);
            execute_forest_into(
                &plan.kernel,
                &plan.path,
                &plan.forest,
                csf,
                factors,
                workspace,
                OutputMut::Sparse(out_vals),
            )?;
            let coo = self
                .coo_template
                .as_ref()
                .expect("sparse output has a template")
                .with_vals(self.out_vals.clone());
            Ok(ContractionOutput::Sparse(coo))
        } else {
            out_dense.fill_zero();
            execute_forest_into(
                &plan.kernel,
                &plan.path,
                &plan.forest,
                csf,
                factors,
                workspace,
                OutputMut::Dense(out_dense),
            )?;
            Ok(ContractionOutput::Dense(self.out_dense.clone()))
        }
    }

    /// Rebind a dense factor's values in place (every slot the name
    /// fills). The new tensor must match the bound shape exactly; no
    /// reallocation happens.
    pub fn set_factor(&mut self, name: &str, tensor: &DenseTensor) -> Result<()> {
        let Executor {
            factors,
            slots_by_name,
            ..
        } = self;
        let slots = slots_by_name.get(name).ok_or_else(|| {
            SpttnError::Execution(format!("no dense factor named '{name}' in this plan"))
        })?;
        for &slot in slots {
            if factors[slot].dims() != tensor.dims() {
                return Err(SpttnError::Shape(format!(
                    "factor '{name}' has dims {:?}, executor expects {:?}",
                    tensor.dims(),
                    factors[slot].dims()
                )));
            }
        }
        for &slot in slots {
            factors[slot]
                .as_mut_slice()
                .copy_from_slice(tensor.as_slice());
        }
        Ok(())
    }

    /// Rebind the sparse input's nonzero values in place (leaf order of
    /// the bound CSF). The sparsity *pattern* is fixed at bind time —
    /// only same-pattern value updates are cheap; a new pattern needs a
    /// fresh [`Plan::bind`].
    pub fn set_sparse_values(&mut self, vals: &[f64]) -> Result<()> {
        if vals.len() != self.csf.nnz() {
            return Err(SpttnError::Shape(format!(
                "got {} sparse values, the bound CSF has {} nonzeros",
                vals.len(),
                self.csf.nnz()
            )));
        }
        // The COO template's values are never read — it only donates its
        // coordinates (`with_vals` replaces values) — so only the CSF
        // needs updating.
        self.csf.vals_mut().copy_from_slice(vals);
        Ok(())
    }

    /// Human-readable summary of the underlying plan.
    pub fn describe(&self) -> String {
        self.plan.describe()
    }
}
