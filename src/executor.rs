//! Stage 2 of the pipeline: bind operands to a symbolic [`Plan`] and
//! execute it repeatedly.
//!
//! An [`Executor`] owns the bound CSF sparse input, the dense factors
//! (slot-ordered), a preallocated [`Workspace`] holding every Eq.-5
//! intermediate buffer, and output storage — everything execution
//! touches. After [`Plan::bind`] returns, [`Executor::execute_into`]
//! performs **zero heap allocations**, and the rebinding methods
//! ([`Executor::set_factor`], [`Executor::set_sparse_values`]) copy new
//! values into the existing allocations, which is exactly the shape of
//! an ALS / HOOI sweep: plan once, rebind factors each iteration,
//! execute.
//!
//! When the plan's [`crate::ExecOptions`] resolve to more than one
//! thread, binding also partitions the CSF root level into
//! leaf-balanced tiles and builds a
//! [`ParallelExecutor`] — a persistent worker pool
//! with one workspace and private output per thread. The allocation
//! contract is unchanged (fan-out reuses preallocated job slots and
//! buffers), results stay within ≤1e-9 of the serial path, and a fixed
//! thread count is bit-reproducible run to run thanks to the
//! deterministic tile order and tree reduction. `threads = 1` skips all
//! of this and is byte-identical to previous serial behavior.

use crate::contraction::{Engine, Plan};
use crate::{Result, SpttnError};
use spttn_exec::{
    execute_forest_into_guarded, execute_tape_into_guarded, validate_slotted_operands,
    CompiledTape, ContractionOutput, ExecStats, OutputMut, ParallelExecutor, RunGuard, TapeReport,
    Workspace,
};
use spttn_tensor::{CooTensor, Csf, DenseTensor};
use std::collections::HashMap;
use std::sync::Arc;

impl Plan {
    /// Bind operands to this plan: the CSF sparse input (stored in the
    /// **expression's written index order**) and one dense tensor per
    /// distinct factor name. Shapes are validated here, once — the
    /// executor's hot path revalidates cheaply but never reallocates.
    ///
    /// When the plan chose a non-natural CSF storage order
    /// ([`Plan::mode_order`], e.g. under
    /// [`ModeOrderPolicy::Auto`](crate::cost::ModeOrderPolicy)), the
    /// incoming tree is re-sorted into that order here — a one-time
    /// `O(nnz log nnz)` rebuild, after which execution is as
    /// allocation-free as ever.
    pub fn bind(&self, csf: Csf, factors: &[(&str, &DenseTensor)]) -> Result<Executor> {
        // A duplicated name would silently shadow the later binding.
        for (pos, (name, _)) in factors.iter().enumerate() {
            if factors[..pos].iter().any(|(n, _)| n == name) {
                return Err(SpttnError::Execution(format!(
                    "factor '{name}' bound twice; bind each name once"
                )));
            }
        }
        // Resolve names to input-order tensors (sparse slot skipped). A
        // name filling several slots is cloned into each.
        let mut compact: Vec<DenseTensor> = Vec::new();
        for (slot, r) in self.kernel.inputs.iter().enumerate() {
            if slot == self.kernel.sparse_input {
                continue;
            }
            let t = factors
                .iter()
                .find(|(name, _)| *name == r.name)
                .map(|(_, t)| (*t).clone())
                .ok_or_else(|| {
                    SpttnError::Execution(format!(
                        "dense factor '{}' not bound; pass (\"{}\", &tensor) to bind",
                        r.name, r.name
                    ))
                })?;
            compact.push(t);
        }
        for (name, _) in factors {
            if !self
                .kernel
                .inputs
                .iter()
                .enumerate()
                .any(|(slot, r)| slot != self.kernel.sparse_input && r.name == *name)
            {
                return Err(SpttnError::Execution(format!(
                    "bound factor '{name}' does not appear in the kernel"
                )));
            }
        }
        self.bind_ordered(csf, compact)
    }

    /// Bind with factors already collected in input order (the sparse
    /// slot skipped). Shared by [`Plan::bind`] and the one-shot facade.
    pub(crate) fn bind_ordered(&self, csf: Csf, factors: Vec<DenseTensor>) -> Result<Executor> {
        self.clone().into_executor(csf, factors)
    }

    /// Compile this plan's nest to an instruction tape and statically
    /// verify it without binding any data — the `spttn plan --verify`
    /// path. Returns the proof summary on success; a malformed program
    /// surfaces as an execution error naming the violated invariant.
    ///
    /// [`Plan::bind`] performs the same check on every debug build
    /// (and, with [`crate::PlanOptions::with_verify`], in release), so
    /// calling this is only needed to verify a plan that will not be
    /// bound here — e.g. file-less planning.
    pub fn verify_tape(&self) -> Result<TapeReport> {
        let tape = CompiledTape::compile_with(
            &self.kernel,
            &self.path,
            &self.forest,
            &self.buffers,
            self.exec.microkernels,
        )?;
        tape.verify().map_err(SpttnError::from)
    }

    /// Consuming variant of [`Plan::bind_ordered`] (avoids the clone
    /// when the plan is not reused).
    pub(crate) fn into_executor(self, csf: Csf, factors: Vec<DenseTensor>) -> Result<Executor> {
        let (csf, leaf_perm) = self.reorder_csf(csf)?;
        Executor::new(self, csf, leaf_perm, factors)
    }

    /// Re-sort an incoming written-order CSF into the plan's chosen
    /// storage order (no-op for natural-order plans). Returns the
    /// rebuilt tree plus, when a rebuild happened, the leaf
    /// permutation: entry `e` of the *incoming* tree's leaf order lands
    /// at leaf `perm[e]` of the rebuilt tree —
    /// [`Executor::set_sparse_values`] scatters through it so callers
    /// keep addressing values in the order of the CSF they bound.
    ///
    /// The contract: the caller's CSF level `l` holds the sparse index
    /// written at position `l` of the expression, whatever original COO
    /// modes those levels carry. The plan's level `l` wants written
    /// position `mode_order[l]`, i.e. the caller's level
    /// `mode_order[l]` — so the rebuilt tree's original-mode order is
    /// the composition below.
    fn reorder_csf(&self, csf: Csf) -> Result<(Csf, Option<Vec<usize>>)> {
        if self.is_natural_order() {
            return Ok((csf, None));
        }
        if csf.order() != self.mode_order.len() {
            return Err(SpttnError::Shape(format!(
                "sparse tensor has {} modes but the plan's sparse input has {}",
                csf.order(),
                self.mode_order.len()
            )));
        }
        let new_order: Vec<usize> = self
            .mode_order
            .iter()
            .map(|&p| csf.mode_order()[p])
            .collect();
        // Entries of a CSF are distinct, so sorting them under the new
        // order is a unique total order — position `k` of this sort is
        // exactly leaf `k` of the rebuilt tree.
        let coo = csf.to_coo();
        let mut idx: Vec<usize> = (0..coo.nnz()).collect();
        idx.sort_unstable_by(|&a, &b| {
            let (ca, cb) = (coo.coord(a), coo.coord(b));
            new_order
                .iter()
                .map(|&m| ca[m].cmp(&cb[m]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut leaf_perm = vec![0usize; coo.nnz()];
        for (new_pos, &old) in idx.iter().enumerate() {
            leaf_perm[old] = new_pos;
        }
        let rebuilt = Csf::from_coo(&coo, &new_order)?;
        Ok((rebuilt, Some(leaf_perm)))
    }
}

/// A plan bound to operands, ready for repeated execution.
///
/// See the [module docs](self) for the allocation contract and the
/// rebinding workflow.
#[derive(Debug, Clone)]
pub struct Executor {
    plan: Plan,
    csf: Csf,
    /// Slot-ordered dense factors; the sparse slot holds an unread
    /// scalar placeholder.
    factors: Vec<DenseTensor>,
    /// Input slots each factor name fills (for [`Executor::set_factor`]).
    slots_by_name: HashMap<String, Vec<usize>>,
    workspace: Workspace,
    /// Tiled multi-threaded engine (worker pool + per-thread workspaces
    /// and partial outputs), present when the plan's [`crate::ExecOptions`]
    /// resolve to more than one thread *and* the tensor splits into more
    /// than one tile. `None` means the serial path, byte-identical to a
    /// single-threaded bind.
    par: Option<ParallelExecutor>,
    /// The bind-time-compiled instruction tape, present when the plan's
    /// [`Engine`] is [`Engine::Tape`] (the default). One immutable
    /// program shared by every executing thread; the per-thread mutable
    /// state lives in the workspaces.
    tape: Option<Arc<CompiledTape>>,
    /// When the plan chose a non-natural storage order: maps leaf `e`
    /// of the CSF the caller bound to leaf `leaf_perm[e]` of the
    /// rebuilt tree, so [`Executor::set_sparse_values`] keeps accepting
    /// values in the caller's leaf order. `None` on natural-order plans
    /// (identity mapping).
    leaf_perm: Option<Vec<usize>>,
    /// Microkernel dispatch counters of the most recent execution,
    /// aggregated across threads.
    last_stats: ExecStats,
    /// Internal output storage for [`Executor::execute`].
    out_dense: DenseTensor,
    out_vals: Vec<f64>,
    /// Coordinate template for materializing pattern-sharing outputs.
    coo_template: Option<CooTensor>,
}

/// Run a bound plan into a pre-validated output target, choosing the
/// parallel or serial engine, and record the run's aggregated stats.
/// Free function over the executor's split fields so both `execute`
/// and `execute_into` can call it under their own borrows.
#[allow(clippy::too_many_arguments)]
fn run_parts(
    plan: &Plan,
    csf: &Csf,
    factors: &[DenseTensor],
    workspace: &mut Workspace,
    par: &mut Option<ParallelExecutor>,
    tape: &Option<Arc<CompiledTape>>,
    last_stats: &mut ExecStats,
    out: OutputMut<'_>,
    guard: Option<&RunGuard>,
) -> Result<()> {
    let res = match par.as_mut() {
        // The parallel engine carries its own tape (shared program,
        // per-tile state) when one was compiled at bind.
        Some(engine) => engine.execute_into_guarded(
            &plan.kernel,
            &plan.path,
            &plan.forest,
            csf,
            factors,
            out,
            guard,
        ),
        None => match tape {
            Some(t) => {
                execute_tape_into_guarded(t, &plan.kernel, csf, factors, workspace, out, guard)
            }
            None => execute_forest_into_guarded(
                &plan.kernel,
                &plan.path,
                &plan.forest,
                csf,
                factors,
                workspace,
                out,
                guard,
            ),
        },
    };
    if res.is_ok() {
        *last_stats = match par.as_ref() {
            Some(engine) => engine.stats(),
            None => workspace.stats(),
        };
    }
    res
}

/// Bind-time workspace admission under
/// [`RunBudget::max_workspace_bytes`](crate::RunBudget): find the
/// largest thread count `t ≤ requested` whose replicated Eq.-5
/// footprint ([`Plan::parallel_footprint`] × 8 bytes) fits the budget.
/// Degradation is graceful — fewer threads first, down to the serial
/// path — and only when even one thread's workspace exceeds the budget
/// does binding fail with a typed [`SpttnError::BudgetExceeded`]
/// reporting predicted vs allowed bytes.
fn admit_threads(plan: &Plan, requested: usize, max_bytes: Option<u64>) -> Result<usize> {
    let Some(max) = max_bytes else {
        return Ok(requested);
    };
    let bytes = |t: usize| plan.parallel_footprint(t).saturating_mul(8);
    let mut t = requested.max(1);
    while t > 1 && bytes(t) > u128::from(max) {
        t -= 1;
    }
    if bytes(t) > u128::from(max) {
        return Err(SpttnError::BudgetExceeded {
            resource: "workspace bytes",
            predicted: bytes(1),
            allowed: u128::from(max),
        });
    }
    Ok(t)
}

impl Executor {
    fn new(
        plan: Plan,
        csf: Csf,
        leaf_perm: Option<Vec<usize>>,
        compact: Vec<DenseTensor>,
    ) -> Result<Executor> {
        // Budget admission runs before any binding work: a plan the
        // budget rejects must not allocate workspaces or spawn a pool.
        // Flops are structural (no degradation can lower them), so they
        // gate first; the workspace check then degrades the thread
        // count before giving up.
        if let Some(max) = plan.exec.budget.max_modeled_flops {
            if plan.flops > max {
                return Err(SpttnError::BudgetExceeded {
                    resource: "modeled flops",
                    predicted: plan.flops,
                    allowed: max,
                });
            }
        }
        let threads = admit_threads(
            &plan,
            plan.exec.threads.resolve(),
            plan.exec.budget.max_workspace_bytes,
        )?;
        let kernel = &plan.kernel;
        let n_dense = kernel.inputs.len() - 1;
        if compact.len() != n_dense {
            return Err(SpttnError::Execution(format!(
                "expected {n_dense} dense factors, got {}",
                compact.len()
            )));
        }
        let mut factors: Vec<DenseTensor> = Vec::with_capacity(kernel.inputs.len());
        let mut slots_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut next = compact.into_iter();
        for (slot, r) in kernel.inputs.iter().enumerate() {
            if slot == kernel.sparse_input {
                factors.push(DenseTensor::zeros(&[]));
                continue;
            }
            factors.push(next.next().expect("length checked above"));
            slots_by_name.entry(r.name.clone()).or_default().push(slot);
        }
        validate_slotted_operands(kernel, &csf, &factors)?;

        // Tape engine (the default): compile the plan's nest to a flat
        // instruction program exactly once per bind; serial and
        // parallel executions share the same immutable tape.
        let tape = match plan.exec.engine {
            Engine::Tape => {
                // `compile_with` resolves the plan's microkernel
                // policy against the host CPU (and the
                // `SPTTN_MICROKERNELS` override) once, here; the
                // selected kernels ride in the tape as fn pointers.
                let tape = CompiledTape::compile_with(
                    kernel,
                    &plan.path,
                    &plan.forest,
                    &plan.buffers,
                    plan.exec.microkernels,
                )?;
                // Static verification gate: every debug build proves
                // the program well-formed before it can run;
                // release builds opt in via
                // `PlanOptions::with_verify(true)`.
                if plan.exec.verify || cfg!(debug_assertions) {
                    tape.verify().map_err(SpttnError::from)?;
                }
                Some(Arc::new(tape))
            }
            Engine::Interp => None,
        };
        // Parallel engine: only when the admitted thread count is >1
        // and the tensor actually splits (a single tile would duplicate
        // the serial path with extra copies).
        let par = if threads > 1 {
            let mut engine = ParallelExecutor::new(
                kernel,
                &plan.path,
                &plan.forest,
                &plan.buffers,
                &csf,
                threads,
            );
            if let Some(t) = &tape {
                engine = engine.with_tape(Arc::clone(t));
            }
            (engine.n_tiles() > 1).then_some(engine)
        } else {
            None
        };
        // The serial workspace backs only the `par == None` path; when
        // the engine owns per-thread workspaces, keep a spec-free
        // placeholder instead of a dead replica of every Eq.-5 buffer.
        let mut workspace = if par.is_some() {
            Workspace::from_specs(kernel, &plan.path, &plan.forest, &[])
        } else {
            Workspace::from_specs(kernel, &plan.path, &plan.forest, &plan.buffers)
        };
        if par.is_none() {
            if let Some(t) = &tape {
                workspace.prepare_tape(t);
            }
        }
        let (out_dense, out_vals, coo_template) = if kernel.output_sparse {
            (
                DenseTensor::zeros(&[]),
                vec![0.0; csf.nnz()],
                Some(csf.to_coo()),
            )
        } else {
            (
                DenseTensor::zeros(&kernel.ref_dims(&kernel.output)),
                Vec::new(),
                None,
            )
        };

        Ok(Executor {
            plan,
            csf,
            factors,
            slots_by_name,
            workspace,
            par,
            tape,
            leaf_perm,
            last_stats: ExecStats::default(),
            out_dense,
            out_vals,
            coo_template,
        })
    }

    /// The symbolic plan this executor runs.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The bound sparse input.
    pub fn csf(&self) -> &Csf {
        &self.csf
    }

    /// The preallocated workspace (exposed so callers can assert buffer
    /// stability across executions). Under parallel execution this is a
    /// spec-free placeholder — see [`Executor::parallel`] for the
    /// per-thread workspaces that actually run.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The tiled parallel engine, when this executor runs multi-threaded
    /// (plan bound with >1 thread and a tensor that splits into >1 tile).
    pub fn parallel(&self) -> Option<&ParallelExecutor> {
        self.par.as_ref()
    }

    /// Number of threads executions actually use: the parallel engine's
    /// tile count, or 1 on the serial path.
    pub fn threads(&self) -> usize {
        self.par.as_ref().map_or(1, ParallelExecutor::n_tiles)
    }

    /// The engine executions run on ([`Engine::Tape`] by default).
    pub fn engine(&self) -> Engine {
        match self.tape {
            Some(_) => Engine::Tape,
            None => Engine::Interp,
        }
    }

    /// The compiled instruction tape, when running on [`Engine::Tape`]
    /// (exposed for diagnostics: program size, cursor and finger
    /// counts).
    pub fn tape(&self) -> Option<&CompiledTape> {
        self.tape.as_deref()
    }

    /// Microkernel dispatch counters of the most recent
    /// [`Executor::execute`] / [`Executor::execute_into`], aggregated
    /// across all executing threads. Zeros before the first execution.
    pub fn last_stats(&self) -> ExecStats {
        self.last_stats
    }

    /// The first bound tensor for a factor name, if any.
    pub fn factor(&self, name: &str) -> Option<&DenseTensor> {
        let slot = *self.slots_by_name.get(name)?.first()?;
        Some(&self.factors[slot])
    }

    /// A zeroed output with the correct shape for
    /// [`Executor::execute_into`]: a dense tensor, or a pattern-sharing
    /// sparse tensor with the CSF's coordinates.
    pub fn output_template(&self) -> ContractionOutput {
        match &self.coo_template {
            Some(coo) => ContractionOutput::Sparse(coo.with_vals(vec![0.0; self.csf.nnz()])),
            None => ContractionOutput::Dense(DenseTensor::zeros(
                &self.plan.kernel.ref_dims(&self.plan.kernel.output),
            )),
        }
    }

    /// Execute into a caller-owned output with **zero heap allocation**.
    ///
    /// For a plain `=` plan the output is zeroed first; for a `+=` plan
    /// (see [`crate::Contraction::with_accumulate`]) the contraction is
    /// accumulated on top of the output's existing values.
    ///
    /// When the plan's [`crate::ExecOptions`] carry a cancel token or a
    /// deadline, execution checks them at every root-subtree boundary
    /// and returns [`SpttnError::Cancelled`] instead of a partial
    /// result (the output is left in an unspecified partially-written
    /// state; re-zero or start from a fresh template before retrying a
    /// `+=` plan).
    pub fn execute_into(&mut self, out: &mut ContractionOutput) -> Result<()> {
        // The deadline clock starts here, at the execution boundary —
        // not at bind. Guard construction is allocation-free (an `Arc`
        // clone of the token at most), preserving the zero-allocation
        // contract of the hot path.
        let guard = RunGuard::new(self.plan.exec.cancel.clone(), self.plan.exec.deadline);
        self.execute_into_guarded(out, Some(&guard))
    }

    /// [`Executor::execute_into`] with a caller-supplied [`RunGuard`]
    /// instead of one built from the plan's options — the hook
    /// `spttn-net` uses to share one network-wide deadline across every
    /// contraction step. `None` runs unguarded.
    pub fn execute_into_guarded(
        &mut self,
        out: &mut ContractionOutput,
        guard: Option<&RunGuard>,
    ) -> Result<()> {
        let Executor {
            plan,
            csf,
            factors,
            workspace,
            par,
            tape,
            last_stats,
            coo_template,
            ..
        } = self;
        match out {
            ContractionOutput::Dense(d) => {
                // Guard before zeroing so a mismatched output is left
                // untouched; the core revalidates with a full message.
                let oinds = &plan.kernel.output.indices;
                let fits = !plan.kernel.output_sparse
                    && d.order() == oinds.len()
                    && oinds
                        .iter()
                        .enumerate()
                        .all(|(pos, &i)| d.dims()[pos] == plan.kernel.dim(i));
                if fits && !plan.accumulate {
                    d.fill_zero();
                }
                run_parts(
                    plan,
                    csf,
                    factors,
                    workspace,
                    par,
                    tape,
                    last_stats,
                    OutputMut::Dense(d),
                    guard,
                )
            }
            ContractionOutput::Sparse(c) => {
                if c.dims() != csf.dims() {
                    return Err(SpttnError::Shape(format!(
                        "sparse output has dims {:?}, the bound CSF has {:?}",
                        c.dims(),
                        csf.dims()
                    )));
                }
                // A pattern-sharing output must carry *exactly* the
                // bound CSF's coordinates in leaf order — same nnz with
                // different coordinates would silently pair values with
                // the wrong positions. Cheap memcmp, no allocation.
                if let Some(template) = coo_template {
                    if c.coords() != template.coords() {
                        return Err(SpttnError::Shape(
                            "sparse output's coordinate pattern differs from the bound CSF; \
                             start from Executor::output_template()"
                                .into(),
                        ));
                    }
                }
                let fits = plan.kernel.output_sparse && c.nnz() == csf.nnz();
                if fits && !plan.accumulate {
                    c.vals_mut().fill(0.0);
                }
                run_parts(
                    plan,
                    csf,
                    factors,
                    workspace,
                    par,
                    tape,
                    last_stats,
                    OutputMut::Sparse(c.vals_mut()),
                    guard,
                )
            }
        }
    }

    /// Execute and return a freshly materialized output (always `=`
    /// semantics: the result starts from zero). Allocates only for the
    /// returned value; prefer [`Executor::execute_into`] in hot loops.
    pub fn execute(&mut self) -> Result<ContractionOutput> {
        let guard = RunGuard::new(self.plan.exec.cancel.clone(), self.plan.exec.deadline);
        let guard = Some(&guard);
        let Executor {
            plan,
            csf,
            factors,
            workspace,
            par,
            tape,
            last_stats,
            out_dense,
            out_vals,
            ..
        } = self;
        if plan.kernel.output_sparse {
            out_vals.fill(0.0);
            run_parts(
                plan,
                csf,
                factors,
                workspace,
                par,
                tape,
                last_stats,
                OutputMut::Sparse(out_vals),
                guard,
            )?;
            let coo = self
                .coo_template
                .as_ref()
                .expect("sparse output has a template")
                .with_vals(self.out_vals.clone());
            Ok(ContractionOutput::Sparse(coo))
        } else {
            out_dense.fill_zero();
            run_parts(
                plan,
                csf,
                factors,
                workspace,
                par,
                tape,
                last_stats,
                OutputMut::Dense(out_dense),
                guard,
            )?;
            Ok(ContractionOutput::Dense(self.out_dense.clone()))
        }
    }

    /// Rebind a dense factor's values in place (every slot the name
    /// fills). The new tensor must match the bound shape exactly; no
    /// reallocation happens.
    pub fn set_factor(&mut self, name: &str, tensor: &DenseTensor) -> Result<()> {
        let Executor {
            factors,
            slots_by_name,
            ..
        } = self;
        let slots = slots_by_name.get(name).ok_or_else(|| {
            SpttnError::Execution(format!("no dense factor named '{name}' in this plan"))
        })?;
        for &slot in slots {
            if factors[slot].dims() != tensor.dims() {
                return Err(SpttnError::Shape(format!(
                    "factor '{name}' has dims {:?}, executor expects {:?}",
                    tensor.dims(),
                    factors[slot].dims()
                )));
            }
        }
        for &slot in slots {
            factors[slot]
                .as_mut_slice()
                .copy_from_slice(tensor.as_slice());
        }
        Ok(())
    }

    /// Rebind the sparse input's nonzero values in place, given in the
    /// leaf order of the CSF that was passed to [`Plan::bind`]. When
    /// the plan chose a different storage order and bind re-sorted the
    /// tree, the values are scattered through the recorded leaf
    /// permutation — callers never need to know the internal order.
    /// The sparsity *pattern* is fixed at bind time — only same-pattern
    /// value updates are cheap; a new pattern needs a fresh
    /// [`Plan::bind`].
    pub fn set_sparse_values(&mut self, vals: &[f64]) -> Result<()> {
        if vals.len() != self.csf.nnz() {
            return Err(SpttnError::Shape(format!(
                "got {} sparse values, the bound CSF has {} nonzeros",
                vals.len(),
                self.csf.nnz()
            )));
        }
        // The COO template's values are never read — it only donates its
        // coordinates (`with_vals` replaces values) — so only the CSF
        // needs updating.
        match &self.leaf_perm {
            None => self.csf.vals_mut().copy_from_slice(vals),
            Some(perm) => {
                let dst = self.csf.vals_mut();
                for (old, &v) in vals.iter().enumerate() {
                    dst[perm[old]] = v;
                }
            }
        }
        Ok(())
    }

    /// Human-readable summary of the underlying plan.
    pub fn describe(&self) -> String {
        self.plan.describe()
    }
}

// Pooling contract: executors are checked out of a pool on one thread
// and executed on another (`spttn-net` routes intermediates this way),
// so `Executor` must stay `Send`. The worker pool inside
// `ParallelExecutor` owns its threads and shares state only through
// `Mutex`/`Condvar`; this assertion turns any future non-`Send` field
// into a compile error instead of a downstream breakage.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Executor>();
};
